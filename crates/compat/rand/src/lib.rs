//! Offline stand-in for the parts of `rand` 0.8 that `apparate-sim` uses:
//! [`RngCore`], [`Rng::sample`] / [`Rng::gen_range`], [`SeedableRng`], and the
//! [`distributions::Open01`] distribution. The call sites are API-compatible
//! with the real crate, so swapping the genuine `rand` back in (when a
//! registry is reachable) requires no source changes elsewhere.

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Distributions over values, sampled with an RNG.
pub mod distributions {
    use crate::RngCore;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The open unit interval `(0, 1)`: never returns exactly 0 or 1.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Open01;

    impl Distribution<f64> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // Top 53 bits plus half an ulp, exactly the mapping the real
            // Open01 uses up to rounding: strictly inside (0, 1).
            ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from a distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distribution: D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }

    /// Uniform integer in the given half-open range.
    ///
    /// Unbiased via Lemire-style widening rejection.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return range.start + draw % span;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed;

    /// Build the RNG from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

#[cfg(test)]
mod tests {
    use super::distributions::Open01;
    use super::{Rng, RngCore, SeedableRng};

    /// SplitMix64 test generator.
    struct Mix(u64);
    impl RngCore for Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
    impl SeedableRng for Mix {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Mix {
            Mix(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn open01_is_open() {
        let mut rng = Mix::from_seed(7u64.to_le_bytes());
        for _ in 0..10_000 {
            let x: f64 = rng.sample(Open01);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Mix::from_seed(9u64.to_le_bytes());
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[rng.gen_range(0..7) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts {counts:?}");
    }
}
