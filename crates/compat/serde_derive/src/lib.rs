//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to a crates.io
//! mirror, and nothing in the reproduction actually serialises data yet — the
//! `Serialize`/`Deserialize` derives across the workspace only express intent.
//! These derive macros therefore expand to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the codebase compiling without
//! pulling in the real serde machinery. Swapping the real `serde` +
//! `serde_derive` back in is a two-line change in `crates/compat/serde`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
