//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! minimal surface the workspace uses: the `Serialize` / `Deserialize` names
//! as both (empty) traits and (no-op) derive macros. No actual serialisation
//! is performed anywhere in the reproduction yet; when a real serialisation
//! need appears, replace this path dependency with the real crates.io `serde`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derive macros share the `Serialize` / `Deserialize` names in the macro
// namespace, exactly as the real serde facade does.
pub use serde_derive::{Deserialize, Serialize};
