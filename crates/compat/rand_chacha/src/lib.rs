//! Offline stand-in for `rand_chacha` providing [`ChaCha8Rng`].
//!
//! Unlike the serde stub, this is a *real* implementation: a full ChaCha
//! keystream generator with 8 rounds (RFC 8439 layout, 64-bit block counter),
//! because `apparate-sim`'s splittable streams rely on its statistical
//! quality. The exact output stream differs from the upstream crate only in
//! word-consumption order, which is irrelevant here: every consumer derives
//! seeds via `DeterministicRng`, so determinism within this workspace is what
//! matters, not cross-crate bit-compatibility.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (the seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word within `block`; 16 forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero; uniqueness comes from the 256-bit seed.
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::from_seed([3; 32]);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Bit balance on a sample of words.
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "one-bit fraction {frac}");
    }
}
