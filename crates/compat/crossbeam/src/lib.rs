//! Offline stand-in for the slice of `crossbeam` used by `apparate-exec`:
//! an unbounded MPMC-ish channel. Backed by `std::sync::mpsc`, which provides
//! the same `Sender`/`Receiver`/`TryRecvError` shape for the single-consumer
//! pattern the profiler uses.

/// Channel types mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn channel_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41usize).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 41);
        assert_eq!(rx.try_recv().unwrap(), 42);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
