//! Offline stand-in for the slices of `crossbeam` used by this workspace:
//! an unbounded MPMC-ish channel (used by `apparate-exec`'s feedback links)
//! and scoped threads (used by `apparate-serving`'s parallel fleet runs).
//! Both mirror the upstream `crossbeam` API shapes, so replacing this stub
//! with the real crate stays a manifest-only change.

/// Channel types mirroring `crossbeam::channel`, for the single-consumer
/// pattern the profiler uses. Backed by a mutex-guarded `VecDeque` rather
/// than `std::sync::mpsc`: the feedback links create short-lived channels on
/// the hot path, and the ring buffer amortises to zero allocations per send
/// where `mpsc` allocates a list node for every message.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the rejected message like the upstream type.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender has been dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Queue a message. Fails only when the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().senders -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Pop the oldest queued message, or report why none is available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receiver_alive = false;
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

/// Scoped threads mirroring `crossbeam::thread`: [`thread::scope`] runs a
/// closure that may spawn threads borrowing from the enclosing stack frame,
/// joins every spawned thread before returning, and reports panics as an
/// `Err` instead of aborting the caller. Backed by `std::thread::scope` —
/// real OS threads, upstream-shaped surface.
pub mod thread {
    use std::panic::AssertUnwindSafe;
    use std::thread as stdthread;

    /// Join result: `Err` carries the payload of a panicked thread, exactly
    /// like `std::thread::Result`.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle: spawn borrowing threads through it. All threads are
    /// joined when the [`scope`] call returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in upstream `crossbeam`, the
        /// closure receives the scope handle again so spawned threads can
        /// themselves spawn siblings (`s.spawn(|_| ...)` is the common form).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. Every spawned thread is joined before `scope` returns. Returns
    /// `Ok` with the closure's result, or `Err` with a panic payload when a
    /// spawned thread panicked without being joined (upstream `crossbeam`
    /// semantics; a panic in the closure itself is also captured).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::thread;

    #[test]
    fn channel_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41usize).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 41);
        assert_eq!(rx.try_recv().unwrap(), 42);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn scoped_threads_borrow_the_stack_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_the_scope_handle() {
        let result = thread::scope(|s| {
            s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            })
            .join()
            .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn joined_panic_is_reported_by_the_handle() {
        let outcome = thread::scope(|s| {
            let handle = s.spawn(|_| -> u32 { panic!("worker died") });
            handle.join().is_err()
        })
        .unwrap();
        assert!(outcome, "join must surface the panic as Err");
    }

    #[test]
    fn unjoined_panic_surfaces_as_scope_error() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("unjoined"));
        });
        assert!(result.is_err(), "scope must report unjoined panics");
    }
}
