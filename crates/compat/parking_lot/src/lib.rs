//! Offline stand-in for `parking_lot::Mutex`: a thin wrapper over
//! `std::sync::Mutex` whose `lock()` returns the guard directly (poisoning is
//! converted into a panic, matching parking_lot's no-poisoning semantics for
//! the non-panicking uses in this workspace).

use std::sync::MutexGuard;

/// Mutex with `parking_lot`'s `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
