//! The recorder: a bounded event ring plus a sampled metrics registry, and
//! the cheap cloneable [`Telemetry`] handle the instrumented crates hold.
//!
//! The handle is `Option`-dispatched: a disabled handle carries no recorder
//! at all, so the per-record hot path is one discriminant check and the
//! event-construction closures passed to [`Telemetry::emit`] never run. That
//! is what keeps vanilla runs byte-identical and the bench suites inside the
//! regression gate — there is no boxed-dyn sink, and nothing is allocated
//! when telemetry is off.

use crate::event::{EventKind, TraceEvent};
use apparate_sim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Capacity and sampling knobs for a recording [`Telemetry`] handle.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Maximum events the trace ring retains; once full, the *oldest* events
    /// are dropped and counted (never silently).
    pub event_capacity: usize,
    /// Minimum simulated time between consecutive points of one series:
    /// gauge updates arriving faster are coalesced to the first observation
    /// in each interval.
    pub sample_interval: SimDuration,
    /// Maximum points one series retains; further points are dropped and
    /// counted per series.
    pub max_points_per_series: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            // Generous enough for a full `repro --sweep` quick run; ~64 B per
            // event, so the worst case is ~16 MiB — and only when recording.
            event_capacity: 1 << 18,
            sample_interval: SimDuration::from_millis(10),
            max_points_per_series: 1 << 16,
        }
    }
}

/// Drop-oldest bounded ring of trace events.
#[derive(Debug)]
struct EventRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(1 << 12)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// One sampled time series, keyed by `(name, replica)`.
#[derive(Debug, Default)]
struct Series {
    points: Vec<(u64, f64)>,
    last_at: Option<u64>,
    dropped: u64,
}

/// Upper bucket bounds of the fixed histogram layout: powers of two from 1 to
/// 2^16, plus an implicit overflow bucket.
pub const HISTOGRAM_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

#[derive(Debug)]
struct Hist {
    counts: [u64; HISTOGRAM_BOUNDS.len() + 1],
    total: u64,
    sum: f64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            counts: [0; HISTOGRAM_BOUNDS.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b as f64)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }
}

/// The state behind one replica's recording handle.
#[derive(Debug)]
pub(crate) struct Recorder {
    config: TelemetryConfig,
    replica: u32,
    ring: EventRing,
    series: BTreeMap<(String, u32), Series>,
    counters: BTreeMap<(String, u32), u64>,
    hists: BTreeMap<(String, u32), Hist>,
}

impl Recorder {
    fn new(config: TelemetryConfig, replica: u32) -> Self {
        Recorder {
            config,
            replica,
            ring: EventRing::new(config.event_capacity),
            series: BTreeMap::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn emit(&mut self, at: SimTime, kind: EventKind) {
        let replica = self.replica;
        self.ring.push(TraceEvent { at, replica, kind });
    }

    fn gauge(&mut self, at: SimTime, name: &str, value: f64) {
        let interval = self.config.sample_interval.as_micros();
        let max_points = self.config.max_points_per_series;
        let key = (name.to_string(), self.replica);
        let series = self.series.entry(key).or_default();
        let now = at.as_micros();
        let due = series.last_at.is_none_or(|last| now >= last + interval);
        if !due {
            return;
        }
        if series.points.len() < max_points {
            series.points.push((now, value));
        } else {
            series.dropped += 1;
        }
        series.last_at = Some(now);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        let key = (name.to_string(), self.replica);
        *self.counters.entry(key).or_insert(0) += delta;
    }

    fn observe(&mut self, name: &str, value: f64) {
        let key = (name.to_string(), self.replica);
        self.hists
            .entry(key)
            .or_insert_with(Hist::new)
            .observe(value);
    }

    fn snapshot(&self) -> TelemetrySnapshot {
        let mut events: Vec<TraceEvent> = self.ring.buf.iter().cloned().collect();
        // Time-order the trace. Some events are stamped at their *effect*
        // time (a link message is stamped when it was sent, a ramp change
        // when it was decided), so insertion order is already nearly sorted;
        // the stable sort keeps emission order for equal timestamps, which
        // makes per-replica timestamps monotone by construction.
        events.sort_by_key(|e| e.at.as_micros());
        TelemetrySnapshot {
            events,
            events_dropped: self.ring.dropped,
            series: self
                .series
                .iter()
                .map(|((name, replica), s)| SeriesData {
                    name: name.clone(),
                    replica: *replica,
                    points: s.points.clone(),
                    dropped: s.dropped,
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|((name, replica), value)| CounterData {
                    name: name.clone(),
                    replica: *replica,
                    value: *value,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|((name, replica), h)| HistogramData {
                    name: name.clone(),
                    replica: *replica,
                    counts: h.counts.to_vec(),
                    count: h.total,
                    sum: h.sum,
                })
                .collect(),
        }
    }
}

/// One exported time series: `(at_us, value)` points for `(name, replica)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// Metric name (e.g. `queue_depth`).
    pub name: String,
    /// Replica the series was sampled on.
    pub replica: u32,
    /// Sampled `(sim-time µs, value)` points, in time order.
    pub points: Vec<(u64, f64)>,
    /// Points dropped after the per-series cap was hit.
    pub dropped: u64,
}

/// One exported counter total for `(name, replica)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterData {
    /// Counter name (e.g. `link_up_messages`).
    pub name: String,
    /// Replica the counter was accumulated on.
    pub replica: u32,
    /// Final value.
    pub value: u64,
}

/// One exported histogram for `(name, replica)`, over the fixed
/// [`HISTOGRAM_BOUNDS`] power-of-two layout (last bucket is overflow).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Histogram name (e.g. `batch_size`).
    pub name: String,
    /// Replica the histogram was accumulated on.
    pub replica: u32,
    /// Per-bucket counts, parallel to [`HISTOGRAM_BOUNDS`] plus overflow.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Everything a recording run captured, cloned out for export and assertions.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Trace events in time order (stable within equal timestamps).
    pub events: Vec<TraceEvent>,
    /// Events dropped from the ring after it filled (oldest-first).
    pub events_dropped: u64,
    /// Sampled gauge series, ordered by `(name, replica)`.
    pub series: Vec<SeriesData>,
    /// Counter totals, ordered by `(name, replica)`.
    pub counters: Vec<CounterData>,
    /// Histograms, ordered by `(name, replica)`.
    pub histograms: Vec<HistogramData>,
}

impl TelemetrySnapshot {
    /// Number of captured events of the given kind name.
    pub fn count_kind(&self, kind_name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.kind_name() == kind_name)
            .count()
    }

    /// All series with the given metric name (one per replica).
    pub fn series_named(&self, name: &str) -> Vec<&SeriesData> {
        self.series.iter().filter(|s| s.name == name).collect()
    }

    /// Sum of a counter across replicas.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Total series points dropped across all series (per-series caps).
    pub fn series_points_dropped(&self) -> u64 {
        self.series.iter().map(|s| s.dropped).sum()
    }
}

/// Shared root of one recording session: hands out (and retains) one
/// [`Recorder`] per replica, so handles derived via
/// [`Telemetry::for_replica`] write into disjoint per-replica buffers that
/// parallel replica threads never contend on — and that merge back into one
/// deterministic snapshot keyed by replica index.
#[derive(Debug)]
struct Registry {
    config: TelemetryConfig,
    replicas: Mutex<BTreeMap<u32, Arc<Mutex<Recorder>>>>,
}

impl Registry {
    fn recorder(self: &Arc<Self>, replica: u32) -> Arc<Mutex<Recorder>> {
        self.replicas
            .lock()
            .entry(replica)
            .or_insert_with(|| Arc::new(Mutex::new(Recorder::new(self.config, replica))))
            .clone()
    }
}

/// The cheap, cloneable telemetry handle threaded through the stack.
///
/// [`Telemetry::disabled`] (also the `Default`) is the zero-cost no-op sink:
/// it holds no recorder, so every instrumentation call reduces to an `Option`
/// discriminant check and the deferred event constructor never runs.
/// [`Telemetry::recording`] starts a session bound to replica 0; clones share
/// that replica's buffer, which is what lets the serving platform, the
/// controller halves and the link senders write into a single trace.
/// [`Telemetry::for_replica`] derives a handle bound to another replica's
/// buffer of the *same* session — fleet runners hand one to each replica
/// (safe to record from parallel threads), and [`Telemetry::snapshot`] merges
/// every replica's buffer deterministically by `(time, replica)`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
    recorder: Option<Arc<Mutex<Recorder>>>,
    replica: u32,
}

impl Telemetry {
    /// The no-op sink: records nothing, costs one discriminant check per call.
    pub fn disabled() -> Self {
        Telemetry {
            registry: None,
            recorder: None,
            replica: 0,
        }
    }

    /// Start a recording session with the given capacities, bound to
    /// replica 0. Capacities apply per replica buffer. All clones share the
    /// same session and the same replica-0 buffer; use
    /// [`Telemetry::for_replica`] to derive handles for other replicas.
    pub fn recording(config: TelemetryConfig) -> Self {
        let registry = Arc::new(Registry {
            config,
            replicas: Mutex::new(BTreeMap::new()),
        });
        let recorder = registry.recorder(0);
        Telemetry {
            registry: Some(registry),
            recorder: Some(recorder),
            replica: 0,
        }
    }

    /// Derive a handle bound to `replica`'s buffer of the same recording
    /// session. Replica buffers are created on first derivation and retained
    /// by the session, so any handle's [`Telemetry::snapshot`] sees them all.
    /// Deriving from a disabled handle yields a disabled handle.
    pub fn for_replica(&self, replica: u32) -> Telemetry {
        match &self.registry {
            None => Telemetry::disabled(),
            Some(registry) => Telemetry {
                recorder: Some(registry.recorder(replica)),
                registry: Some(registry.clone()),
                replica,
            },
        }
    }

    /// True when this handle records (i.e. was built by [`Telemetry::recording`]).
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The replica index this handle stamps onto its records (0 for a root
    /// or disabled handle).
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Record one trace event at simulated time `at`. The constructor closure
    /// only runs when recording, so callers can build event payloads
    /// (including `Vec`s) without charging disabled runs.
    #[inline]
    pub fn emit(&self, at: SimTime, make: impl FnOnce() -> EventKind) {
        if let Some(recorder) = &self.recorder {
            recorder.lock().emit(at, make());
        }
    }

    /// Record a gauge observation; coalesced to at most one point per
    /// configured sample interval per `(name, replica)` series.
    #[inline]
    pub fn gauge(&self, at: SimTime, name: &str, value: f64) {
        if let Some(recorder) = &self.recorder {
            recorder.lock().gauge(at, name, value);
        }
    }

    /// Add to a monotone counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.lock().counter(name, delta);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(recorder) = &self.recorder {
            recorder.lock().observe(name, value);
        }
    }

    /// Clone out everything the whole session recorded so far — every
    /// replica's buffer, merged; `None` for a disabled handle.
    ///
    /// The merge is deterministic regardless of how many threads recorded:
    /// events are time-sorted with ties broken by replica index (then by
    /// per-replica emission order), and series/counters/histograms are
    /// ordered by `(name, replica)`.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let registry = self.registry.as_ref()?;
        let recorders: Vec<Arc<Mutex<Recorder>>> =
            registry.replicas.lock().values().cloned().collect();
        let mut merged = TelemetrySnapshot {
            events: Vec::new(),
            events_dropped: 0,
            series: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        };
        // Ascending replica order (BTreeMap), so the stable time sort below
        // breaks equal-timestamp ties by replica index.
        for recorder in recorders {
            let part = recorder.lock().snapshot();
            merged.events.extend(part.events);
            merged.events_dropped += part.events_dropped;
            merged.series.extend(part.series);
            merged.counters.extend(part.counters);
            merged.histograms.extend(part.histograms);
        }
        merged.events.sort_by_key(|e| e.at.as_micros());
        // Runtime counterpart of the static determinism rules (apparate-lint
        // D-family): the merged trace must keep every replica's events
        // monotone in sim time, or the parallel fleet's "byte-identical for
        // any thread count" invariant is already gone here.
        if cfg!(debug_assertions) {
            let mut last: BTreeMap<u32, u64> = BTreeMap::new();
            for event in &merged.events {
                let at = event.at.as_micros();
                let prev = last.insert(event.replica, at);
                debug_assert!(
                    prev.is_none_or(|p| p <= at),
                    "telemetry merge broke per-replica sim-time monotonicity \
                     (replica {}: {:?} then {} µs)",
                    event.replica,
                    prev,
                    at
                );
            }
        }
        merged
            .series
            .sort_by(|a, b| (&a.name, a.replica).cmp(&(&b.name, b.replica)));
        merged
            .counters
            .sort_by(|a, b| (&a.name, a.replica).cmp(&(&b.name, b.replica)));
        merged
            .histograms
            .sort_by(|a, b| (&a.name, a.replica).cmp(&(&b.name, b.replica)));
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(i: u64) -> EventKind {
        EventKind::BatchFormed {
            size: i as u32,
            queue_depth: 0,
            gpu_us: 100,
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_constructor() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.emit(SimTime::ZERO, || panic!("constructor must not run"));
        assert!(telemetry.snapshot().is_none());
    }

    #[test]
    fn ring_drops_oldest_and_reports_the_count() {
        let telemetry = Telemetry::recording(TelemetryConfig {
            event_capacity: 4,
            ..TelemetryConfig::default()
        });
        for i in 0..10u64 {
            telemetry.emit(SimTime::from_micros(i), || tick(i));
        }
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events_dropped, 6);
        // Oldest-first drops: the survivors are the last four events.
        let sizes: Vec<u32> = snap
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::BatchFormed { size, .. } => size,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![6, 7, 8, 9]);
    }

    #[test]
    fn clones_share_one_recorder() {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let clone = telemetry.clone();
        telemetry.emit(SimTime::from_micros(1), || tick(1));
        clone.emit(SimTime::from_micros(2), || tick(2));
        assert_eq!(telemetry.snapshot().unwrap().events.len(), 2);
    }

    #[test]
    fn gauge_sampling_coalesces_to_the_interval() {
        let telemetry = Telemetry::recording(TelemetryConfig {
            sample_interval: SimDuration::from_micros(100),
            ..TelemetryConfig::default()
        });
        for i in 0..250u64 {
            telemetry.gauge(SimTime::from_micros(i), "queue_depth", i as f64);
        }
        let snap = telemetry.snapshot().unwrap();
        let series = snap.series_named("queue_depth");
        assert_eq!(series.len(), 1);
        // First observation of each 100 µs interval: t = 0, 100, 200.
        assert_eq!(series[0].points, vec![(0, 0.0), (100, 100.0), (200, 200.0)]);
    }

    #[test]
    fn sampling_is_deterministic_for_identical_inputs() {
        let run = |seed: u64| {
            let telemetry = Telemetry::recording(TelemetryConfig {
                sample_interval: SimDuration::from_micros(50),
                ..TelemetryConfig::default()
            });
            // A seed-derived but fixed update pattern, as a simulator driven
            // by a deterministic RNG would produce.
            let mut x = seed;
            for i in 0..1_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                telemetry.gauge(
                    SimTime::from_micros(i * 7),
                    "depth",
                    (x >> 33) as f64 % 17.0,
                );
            }
            telemetry.snapshot().unwrap().series_named("depth")[0].clone()
        };
        assert_eq!(run(42).points, run(42).points);
        assert_ne!(run(42).points, run(43).points);
    }

    #[test]
    fn series_cap_drops_and_counts() {
        let telemetry = Telemetry::recording(TelemetryConfig {
            sample_interval: SimDuration::from_micros(1),
            max_points_per_series: 3,
            ..TelemetryConfig::default()
        });
        for i in 0..10u64 {
            telemetry.gauge(SimTime::from_micros(i * 10), "g", i as f64);
        }
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.series[0].points.len(), 3);
        assert_eq!(snap.series[0].dropped, 7);
        assert_eq!(snap.series_points_dropped(), 7);
    }

    #[test]
    fn replica_handles_partition_series_and_counters() {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        telemetry.gauge(SimTime::ZERO, "depth", 1.0);
        telemetry.counter("msgs", 2);
        let lane = telemetry.for_replica(1);
        lane.gauge(SimTime::ZERO, "depth", 5.0);
        lane.counter("msgs", 3);
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.series_named("depth").len(), 2);
        assert_eq!(snap.counter_total("msgs"), 5);
        let replicas: Vec<u32> = snap.counters.iter().map(|c| c.replica).collect();
        assert_eq!(replicas, vec![0, 1]);
    }

    #[test]
    fn for_replica_on_disabled_stays_disabled() {
        let telemetry = Telemetry::disabled();
        let lane = telemetry.for_replica(3);
        assert!(!lane.is_enabled());
        lane.emit(SimTime::ZERO, || panic!("constructor must not run"));
        assert!(lane.snapshot().is_none());
    }

    #[test]
    fn replica_handles_record_into_the_same_session() {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let lane = telemetry.for_replica(2);
        assert_eq!(telemetry.replica(), 0);
        assert_eq!(lane.replica(), 2);
        telemetry.emit(SimTime::from_micros(1), || tick(1));
        lane.emit(SimTime::from_micros(2), || tick(2));
        // Any handle of the session sees the merged whole.
        assert_eq!(telemetry.snapshot().unwrap().events.len(), 2);
        assert_eq!(lane.snapshot().unwrap().events.len(), 2);
        let replicas: Vec<u32> = lane
            .snapshot()
            .unwrap()
            .events
            .iter()
            .map(|e| e.replica)
            .collect();
        assert_eq!(replicas, vec![0, 2]);
    }

    #[test]
    fn parallel_replica_recording_merges_deterministically() {
        let run = || {
            let telemetry = Telemetry::recording(TelemetryConfig::default());
            crossbeam::thread::scope(|s| {
                for replica in 0..4u32 {
                    let lane = telemetry.for_replica(replica);
                    s.spawn(move |_| {
                        for i in 0..50u64 {
                            lane.emit(SimTime::from_micros(i * 10), || tick(i));
                            lane.gauge(SimTime::from_micros(i * 10), "depth", i as f64);
                            lane.counter("msgs", 1);
                        }
                    });
                }
            })
            .unwrap();
            telemetry.snapshot().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.events.len(), 200);
        assert_eq!(a.events, b.events);
        assert_eq!(a.series, b.series);
        assert_eq!(a.counters, b.counters);
        // Ties in time order are broken by replica index.
        let first_four: Vec<u32> = a.events[..4].iter().map(|e| e.replica).collect();
        assert_eq!(first_four, vec![0, 1, 2, 3]);
    }

    #[test]
    fn snapshot_is_time_ordered_and_monotone_within_replica() {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        // Out-of-order stamps (a link message stamped at its future delivery
        // interleaved with earlier batch events).
        telemetry.emit(SimTime::from_micros(50), || tick(1));
        telemetry.emit(SimTime::from_micros(10), || tick(2));
        let lane = telemetry.for_replica(1);
        lane.emit(SimTime::from_micros(30), || tick(3));
        lane.emit(SimTime::from_micros(5), || tick(4));
        let snap = telemetry.snapshot().unwrap();
        for replica in [0u32, 1] {
            let stamps: Vec<u64> = snap
                .events
                .iter()
                .filter(|e| e.replica == replica)
                .map(|e| e.at.as_micros())
                .collect();
            assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
        }
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        telemetry.observe("batch_size", 1.0);
        telemetry.observe("batch_size", 3.0);
        telemetry.observe("batch_size", 1e9); // overflow bucket
        let snap = telemetry.snapshot().unwrap();
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 3);
        assert_eq!(hist.counts[0], 1); // <= 1
        assert_eq!(hist.counts[2], 1); // <= 4
        assert_eq!(*hist.counts.last().unwrap(), 1); // overflow
        assert!((hist.sum - (4.0 + 1e9)).abs() < 1.0);
    }
}
