//! Structured, sim-time-stamped trace events.
//!
//! Every event carries the simulated time it happened at, the replica it
//! happened on (0 for single-replica runs), and a kind-specific payload. The
//! kind names are stable lowercase strings so exported traces stay grep-able
//! (CI validates required kinds with plain substring matches, the same way it
//! checks `BENCH_apparate.json` suite coverage).

use crate::export::escape_json;
use apparate_sim::SimTime;

/// Which direction of the GPU ↔ controller link a message travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// GPU → controller profiling stream.
    Up,
    /// Controller → GPU threshold/ramp updates.
    Down,
}

impl LinkDirection {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkDirection::Up => "up",
            LinkDirection::Down => "down",
        }
    }
}

/// What happened, with the fields that matter for that kind of event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The Algorithm 2 loop changed the active ramp set.
    RampSetChanged {
        /// Ramp sites newly activated.
        activated: Vec<usize>,
        /// Ramp sites deactivated.
        deactivated: Vec<usize>,
        /// Active ramp count after the change.
        active_count: usize,
    },
    /// The controller issued a `ThresholdUpdate` onto the downlink.
    UpdateIssued {
        /// Configuration epoch the update establishes.
        epoch: u64,
        /// Whether the update ships replacement ramp definitions.
        ramps_changed: bool,
    },
    /// A `ThresholdUpdate` landed on the GPU half and was applied.
    UpdateDelivered {
        /// Configuration epoch now in force on the GPU.
        epoch: u64,
        /// Whether the update shipped replacement ramp definitions.
        ramps_changed: bool,
    },
    /// The controller discarded a profiling record from a stale epoch.
    StaleRecordDropped {
        /// Epoch the record was produced under.
        record_epoch: u64,
        /// Minimum epoch the controller currently accepts.
        min_epoch: u64,
    },
    /// The fleet dispatcher routed a request to a replica.
    Dispatch {
        /// Request identifier.
        request_id: u64,
        /// Replica the request was routed to.
        replica: u32,
    },
    /// The batching platform launched a batch (or the generative loop ran a
    /// decode step). Span-shaped: `gpu_us` is the simulated GPU occupancy.
    BatchFormed {
        /// Requests (or token slots) in the batch.
        size: u32,
        /// Queue depth left behind after the batch drained.
        queue_depth: usize,
        /// Simulated GPU time the batch occupied, µs.
        gpu_us: u64,
    },
    /// A request (or token) was released after its SLO deadline.
    SloViolation {
        /// Request identifier.
        request_id: u64,
        /// Observed latency (classification) or inter-token time
        /// (generative), µs.
        latency_us: u64,
        /// The SLO it was held against, µs.
        slo_us: u64,
    },
    /// One message crossed the GPU ↔ controller link. Span-shaped:
    /// `latency_us` is the charged transfer latency.
    LinkMessage {
        /// Link direction.
        direction: LinkDirection,
        /// Wire bytes charged.
        bytes: u64,
        /// Charged transfer latency, µs.
        latency_us: u64,
    },
    /// The controller completed a threshold-tuning round (Algorithm 1).
    TuningRound {
        /// Configuration epoch published by the round.
        epoch: u64,
        /// Whether the round changed any threshold.
        thresholds_changed: bool,
    },
    /// The streaming ingest front end decided an arrival's fate: admitted to
    /// a replica's bounded queue, or shed at the queue bound.
    Admission {
        /// Offered-stream position of the arrival.
        request_id: u64,
        /// Replica the dispatcher selected.
        replica: u32,
        /// Selected replica's admission-queue depth before the decision.
        queue_depth: usize,
        /// Whether the arrival was admitted (false = shed).
        admitted: bool,
        /// Pacing rate in force after the decision, ppm of the offered rate.
        pace_ppm: u64,
    },
}

impl EventKind {
    /// Stable lowercase kind name used in exports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::RampSetChanged { .. } => "ramp-set-changed",
            EventKind::UpdateIssued { .. } => "update-issued",
            EventKind::UpdateDelivered { .. } => "update-delivered",
            EventKind::StaleRecordDropped { .. } => "stale-record-dropped",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::BatchFormed { .. } => "batch-formed",
            EventKind::SloViolation { .. } => "slo-violation",
            EventKind::LinkMessage { .. } => "link-message",
            EventKind::TuningRound { .. } => "tuning-round",
            EventKind::Admission { .. } => "admission",
        }
    }
}

/// One trace event: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time the event happened at.
    pub at: SimTime,
    /// Replica the event happened on (0 outside fleet runs).
    pub replica: u32,
    /// Kind-specific payload.
    pub kind: EventKind,
}

fn usize_list(xs: &[usize]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
    out
}

impl TraceEvent {
    /// One JSON object, no trailing newline. Common fields first
    /// (`at_us`, `replica`, `kind`), then the kind-specific payload.
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"at_us\":{},\"replica\":{},\"kind\":\"{}\"",
            self.at.as_micros(),
            self.replica,
            escape_json(self.kind.kind_name()),
        );
        let tail = match &self.kind {
            EventKind::RampSetChanged {
                activated,
                deactivated,
                active_count,
            } => format!(
                ",\"activated\":{},\"deactivated\":{},\"active_count\":{}}}",
                usize_list(activated),
                usize_list(deactivated),
                active_count,
            ),
            EventKind::UpdateIssued {
                epoch,
                ramps_changed,
            }
            | EventKind::UpdateDelivered {
                epoch,
                ramps_changed,
            } => format!(",\"epoch\":{epoch},\"ramps_changed\":{ramps_changed}}}"),
            EventKind::StaleRecordDropped {
                record_epoch,
                min_epoch,
            } => format!(",\"record_epoch\":{record_epoch},\"min_epoch\":{min_epoch}}}"),
            EventKind::Dispatch {
                request_id,
                replica,
            } => format!(",\"request_id\":{request_id},\"to_replica\":{replica}}}"),
            EventKind::BatchFormed {
                size,
                queue_depth,
                gpu_us,
            } => format!(",\"size\":{size},\"queue_depth\":{queue_depth},\"gpu_us\":{gpu_us}}}"),
            EventKind::SloViolation {
                request_id,
                latency_us,
                slo_us,
            } => format!(
                ",\"request_id\":{request_id},\"latency_us\":{latency_us},\"slo_us\":{slo_us}}}"
            ),
            EventKind::LinkMessage {
                direction,
                bytes,
                latency_us,
            } => format!(
                ",\"direction\":\"{}\",\"bytes\":{bytes},\"latency_us\":{latency_us}}}",
                direction.as_str(),
            ),
            EventKind::TuningRound {
                epoch,
                thresholds_changed,
            } => format!(",\"epoch\":{epoch},\"thresholds_changed\":{thresholds_changed}}}"),
            EventKind::Admission {
                request_id,
                replica,
                queue_depth,
                admitted,
                pace_ppm,
            } => format!(
                ",\"request_id\":{request_id},\"to_replica\":{replica},\"queue_depth\":{queue_depth},\"admitted\":{admitted},\"pace_ppm\":{pace_ppm}}}"
            ),
        };
        head + &tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            (
                EventKind::RampSetChanged {
                    activated: vec![1],
                    deactivated: vec![],
                    active_count: 3,
                },
                "ramp-set-changed",
            ),
            (
                EventKind::UpdateIssued {
                    epoch: 1,
                    ramps_changed: false,
                },
                "update-issued",
            ),
            (
                EventKind::UpdateDelivered {
                    epoch: 1,
                    ramps_changed: true,
                },
                "update-delivered",
            ),
            (
                EventKind::StaleRecordDropped {
                    record_epoch: 0,
                    min_epoch: 1,
                },
                "stale-record-dropped",
            ),
            (
                EventKind::Dispatch {
                    request_id: 7,
                    replica: 2,
                },
                "dispatch",
            ),
            (
                EventKind::BatchFormed {
                    size: 8,
                    queue_depth: 1,
                    gpu_us: 900,
                },
                "batch-formed",
            ),
            (
                EventKind::SloViolation {
                    request_id: 7,
                    latency_us: 12_000,
                    slo_us: 10_000,
                },
                "slo-violation",
            ),
            (
                EventKind::LinkMessage {
                    direction: LinkDirection::Up,
                    bytes: 1024,
                    latency_us: 425,
                },
                "link-message",
            ),
            (
                EventKind::TuningRound {
                    epoch: 2,
                    thresholds_changed: true,
                },
                "tuning-round",
            ),
            (
                EventKind::Admission {
                    request_id: 7,
                    replica: 1,
                    queue_depth: 3,
                    admitted: true,
                    pace_ppm: 995_000,
                },
                "admission",
            ),
        ];
        for (kind, name) in kinds {
            assert_eq!(kind.kind_name(), name);
        }
    }

    #[test]
    fn json_line_carries_common_and_payload_fields() {
        let event = TraceEvent {
            at: SimTime::from_micros(1234),
            replica: 3,
            kind: EventKind::RampSetChanged {
                activated: vec![2, 5],
                deactivated: vec![1],
                active_count: 4,
            },
        };
        let line = event.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"at_us\":1234"));
        assert!(line.contains("\"replica\":3"));
        assert!(line.contains("\"kind\":\"ramp-set-changed\""));
        assert!(line.contains("\"activated\":[2,5]"));
        assert!(line.contains("\"deactivated\":[1]"));
        assert!(line.contains("\"active_count\":4"));
    }

    #[test]
    fn link_message_names_its_direction() {
        let event = TraceEvent {
            at: SimTime::ZERO,
            replica: 0,
            kind: EventKind::LinkMessage {
                direction: LinkDirection::Down,
                bytes: 10_240,
                latency_us: 650,
            },
        };
        let line = event.to_json_line();
        assert!(line.contains("\"direction\":\"down\""));
        assert!(line.contains("\"bytes\":10240"));
        assert!(line.contains("\"latency_us\":650"));
    }
}
