//! In-run observability for the Apparate reproduction: a sim-time-stamped
//! structured event trace, a sampled metrics registry, and hand-rolled
//! JSON-lines / chrome://tracing exporters.
//!
//! Every number the repro prints elsewhere is an end-of-run aggregate; this
//! crate captures the *dynamics* the paper's figures are actually about —
//! when a ramp flipped, when a `ThresholdUpdate` landed, how a replica's
//! queue evolved over simulated time. Three pieces:
//!
//! - [`Telemetry`]: the cheap, cloneable handle the serving platform, the
//!   controller halves and the link senders hold. [`Telemetry::disabled`]
//!   is a zero-cost no-op (`Option`-dispatched, not boxed-dyn), so vanilla
//!   runs stay byte-identical; [`Telemetry::recording`] shares one bounded
//!   recorder between all clones.
//! - [`TraceEvent`] / [`EventKind`]: ramp activations and deactivations,
//!   `ThresholdUpdate` issues and deliveries, stale-epoch record drops,
//!   dispatch decisions, batch formations, SLO violations and link messages,
//!   held in a drop-oldest ring that reports its drop count (never a silent
//!   cap).
//! - The metrics registry: gauges sampled on a configurable sim-time
//!   interval into per-replica time series (queue depth, batch size, rolling
//!   exit rate, link in-flight, active ramp count), plus counters and
//!   power-of-two histograms.
//!
//! Exports are deliberately dependency-free (the workspace `serde` is an
//! offline stub): [`render_trace_json_lines`] and
//! [`render_metrics_json_lines`] write grep-able JSON-lines, and
//! [`render_chrome_trace`] dumps span-shaped events (batches, link
//! messages) in the chrome://tracing event format.
//!
//! ```
//! use apparate_sim::SimTime;
//! use apparate_telemetry::{EventKind, Telemetry, TelemetryConfig};
//!
//! let telemetry = Telemetry::recording(TelemetryConfig::default());
//! telemetry.emit(SimTime::from_millis(3), || EventKind::BatchFormed {
//!     size: 8,
//!     queue_depth: 2,
//!     gpu_us: 900,
//! });
//! telemetry.gauge(SimTime::from_millis(3), "queue_depth", 2.0);
//! let snapshot = telemetry.snapshot().unwrap();
//! assert_eq!(snapshot.count_kind("batch-formed"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod recorder;

pub use event::{EventKind, LinkDirection, TraceEvent};
pub use export::{
    escape_json, json_number, render_chrome_trace, render_metrics_json_lines,
    render_trace_json_lines,
};
pub use recorder::{
    CounterData, HistogramData, SeriesData, Telemetry, TelemetryConfig, TelemetrySnapshot,
    HISTOGRAM_BOUNDS,
};
