//! Hand-rolled exporters: JSON-lines for the trace and the metrics series,
//! and a chrome://tracing-compatible dump for span-shaped events.
//!
//! The workspace's `serde` is an offline stub whose derives expand to nothing
//! (see `crates/compat/serde`), so serialisation is manual — the same idiom
//! `crates/bench/src/report.rs` uses for `BENCH_apparate.json`. Files are
//! grep-able on purpose: CI validates required event kinds with plain
//! substring matches.

use crate::event::EventKind;
use crate::recorder::{TelemetrySnapshot, HISTOGRAM_BOUNDS};

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number; non-finite values become `null` so the
/// file stays parseable.
pub fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render the event trace as JSON-lines: a schema header carrying the
/// capture/drop accounting, then one event object per line in time order.
pub fn render_trace_json_lines(snapshot: &TelemetrySnapshot) -> String {
    let mut out = format!(
        "{{\"schema\":\"apparate-trace/v1\",\"events\":{},\"events_dropped\":{}}}\n",
        snapshot.events.len(),
        snapshot.events_dropped,
    );
    for event in &snapshot.events {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

/// Render the metrics registry as JSON-lines: a schema header, then one line
/// per series point, one per counter total, and one per histogram.
pub fn render_metrics_json_lines(snapshot: &TelemetrySnapshot) -> String {
    let points: usize = snapshot.series.iter().map(|s| s.points.len()).sum();
    let mut out = format!(
        concat!(
            "{{\"schema\":\"apparate-metrics/v1\",\"series\":{},\"points\":{},",
            "\"points_dropped\":{},\"counters\":{},\"histograms\":{}}}\n"
        ),
        snapshot.series.len(),
        points,
        snapshot.series_points_dropped(),
        snapshot.counters.len(),
        snapshot.histograms.len(),
    );
    for series in &snapshot.series {
        for (at_us, value) in &series.points {
            out.push_str(&format!(
                "{{\"series\":\"{}\",\"replica\":{},\"at_us\":{},\"value\":{}}}\n",
                escape_json(&series.name),
                series.replica,
                at_us,
                json_number(*value),
            ));
        }
    }
    for counter in &snapshot.counters {
        out.push_str(&format!(
            "{{\"counter\":\"{}\",\"replica\":{},\"value\":{}}}\n",
            escape_json(&counter.name),
            counter.replica,
            counter.value,
        ));
    }
    for hist in &snapshot.histograms {
        let bounds = HISTOGRAM_BOUNDS
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let counts = hist
            .counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            concat!(
                "{{\"histogram\":\"{}\",\"replica\":{},\"bounds\":[{}],",
                "\"counts\":[{}],\"count\":{},\"sum\":{}}}\n"
            ),
            escape_json(&hist.name),
            hist.replica,
            bounds,
            counts,
            hist.count,
            json_number(hist.sum),
        ));
    }
    out
}

/// Render the span-shaped events (batches and link messages carry durations;
/// everything else becomes an instant) as a chrome://tracing JSON array —
/// load it via `chrome://tracing` or Perfetto. Replicas map to `pid`s.
pub fn render_chrome_trace(snapshot: &TelemetrySnapshot) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(snapshot.events.len());
    for event in &snapshot.events {
        let name = event.kind.kind_name();
        let ts = event.at.as_micros();
        let pid = event.replica;
        let entry = match &event.kind {
            EventKind::BatchFormed { size, gpu_us, .. } => format!(
                concat!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},",
                    "\"pid\":{},\"tid\":0,\"args\":{{\"size\":{}}}}}"
                ),
                name, ts, gpu_us, pid, size,
            ),
            EventKind::LinkMessage {
                direction,
                bytes,
                latency_us,
            } => format!(
                concat!(
                    "{{\"name\":\"link-{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},",
                    "\"pid\":{},\"tid\":1,\"args\":{{\"bytes\":{}}}}}"
                ),
                direction.as_str(),
                ts,
                latency_us,
                pid,
                bytes,
            ),
            _ => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":0,\"s\":\"p\"}}",
                name, ts, pid,
            ),
        };
        entries.push(entry);
    }
    format!("[{}]\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LinkDirection;
    use crate::recorder::{Telemetry, TelemetryConfig};
    use apparate_sim::SimTime;

    /// Test-side inverse of [`escape_json`], covering every escape the writer
    /// emits.
    fn unescape_json(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("valid \\u escape");
                    out.push(char::from_u32(code).expect("valid code point"));
                }
                other => panic!("unexpected escape: {other:?}"),
            }
        }
        out
    }

    fn recorded() -> TelemetrySnapshot {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        telemetry.emit(SimTime::from_micros(10), || EventKind::BatchFormed {
            size: 8,
            queue_depth: 2,
            gpu_us: 900,
        });
        telemetry.emit(SimTime::from_micros(910), || EventKind::LinkMessage {
            direction: LinkDirection::Up,
            bytes: 1024,
            latency_us: 425,
        });
        telemetry.emit(SimTime::from_micros(2_000), || EventKind::RampSetChanged {
            activated: vec![3],
            deactivated: vec![],
            active_count: 2,
        });
        telemetry.gauge(SimTime::from_micros(10), "queue_depth", 2.0);
        telemetry.counter("link_up_messages", 1);
        telemetry.observe("batch_size", 8.0);
        telemetry.snapshot().unwrap()
    }

    #[test]
    fn escaping_round_trips_hostile_values() {
        let hostile = "quote \" backslash \\ newline \n tab \t bell \u{7} unicode µs";
        let escaped = escape_json(hostile);
        assert!(!escaped.contains('\n'), "escaped text stays on one line");
        assert_eq!(unescape_json(&escaped), hostile);
    }

    #[test]
    fn trace_export_has_header_plus_one_line_per_event() {
        let text = render_trace_json_lines(&recorded());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"apparate-trace/v1\""));
        assert!(lines[0].contains("\"events\":3"));
        assert!(lines[0].contains("\"events_dropped\":0"));
        assert!(lines[1].contains("\"kind\":\"batch-formed\""));
        assert!(lines[2].contains("\"kind\":\"link-message\""));
        assert!(lines[3].contains("\"kind\":\"ramp-set-changed\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn metrics_export_carries_points_counters_and_histograms() {
        let text = render_metrics_json_lines(&recorded());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"schema\":\"apparate-metrics/v1\""));
        assert!(text.contains("\"series\":\"queue_depth\""));
        assert!(text.contains("\"counter\":\"link_up_messages\""));
        assert!(text.contains("\"histogram\":\"batch_size\""));
        assert!(text.contains("\"count\":1"));
    }

    #[test]
    fn non_finite_values_export_as_null() {
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(0.25), "0.25");
    }

    #[test]
    fn chrome_trace_is_a_json_array_with_spans() {
        let text = render_chrome_trace(&recorded());
        assert!(text.starts_with('[') && text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"X\""), "batches export as spans");
        assert!(text.contains("\"dur\":900"));
        assert!(text.contains("\"name\":\"link-up\""));
        assert!(text.contains("\"ph\":\"i\""), "ramp changes are instants");
    }
}
