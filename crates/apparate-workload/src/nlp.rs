//! Synthetic NLP classification workloads (sentiment analysis).
//!
//! The paper streams two datasets (§4.1):
//!
//! * **Amazon product reviews** — ordered by product category and, within a
//!   category, by frequent user. The stream therefore has *block structure*
//!   (per-category and per-user difficulty regimes) but consecutive requests
//!   are otherwise weakly related ("back-to-back reviews are not constrained
//!   in semantic similarity", §4.2).
//! * **IMDB movie reviews** — each review streamed sentence by sentence, so
//!   short runs of related sentences alternate with jumps between reviews.
//!
//! Compared with video, difficulty here has much lower lag-1 autocorrelation
//! and more frequent regime changes, which is exactly what makes Apparate's
//! NLP adaptation harder (wider gap to optimal, Figure 15).

use crate::stream::{Domain, Workload};
use apparate_exec::SampleSemantics;
use apparate_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Amazon-style review stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AmazonConfig {
    /// Number of requests (250 k in the paper).
    pub requests: usize,
    /// Mean number of reviews per product category block.
    pub mean_category_len: usize,
    /// Mean number of consecutive reviews from the same frequent user.
    pub mean_user_run: usize,
}

impl Default for AmazonConfig {
    fn default() -> Self {
        AmazonConfig {
            requests: 20_000,
            mean_category_len: 2_500,
            mean_user_run: 40,
        }
    }
}

/// Generate the Amazon-reviews-style workload.
pub fn amazon_reviews(config: AmazonConfig, seed: u64) -> Workload {
    let rng = DeterministicRng::new(seed).child(0xA11A_5050);
    let mut stream = rng.stream(&[0]);
    let mut samples = Vec::with_capacity(config.requests);
    let mut category_mean = 0.40f64;
    let mut category_remaining = 0usize;
    let mut user_offset = 0.0f64;
    let mut user_remaining = 0usize;
    for i in 0..config.requests {
        if category_remaining == 0 {
            // Calibrated against the paper's BERT exit profile: most product
            // reviews are clear-cut sentiment that shallow ramps resolve
            // (median NLP latency wins of 40–90 %, Figure 13), with per-
            // category regimes spanning easy (books) to genuinely ambiguous
            // (electronics with mixed pros/cons).
            category_mean = stream.uniform(0.25, 0.55);
            category_remaining =
                (stream.uniform(0.5, 1.5) * config.mean_category_len as f64).max(50.0) as usize;
        }
        if user_remaining == 0 {
            // Frequent users have a persistent writing style; some write
            // consistently "easy" (clear-cut) reviews, others nuanced ones.
            user_offset = stream.normal_with(0.0, 0.10);
            user_remaining =
                (stream.uniform(0.5, 1.5) * config.mean_user_run as f64).max(3.0) as usize;
        }
        category_remaining -= 1;
        user_remaining -= 1;
        // Individual reviews vary a lot even for the same user: weak continuity.
        let noise = stream.normal_with(0.0, 0.16);
        let difficulty = (category_mean + user_offset + noise).clamp(0.0, 1.0);
        samples.push(SampleSemantics::new(
            seed.wrapping_mul(65_537).wrapping_add(i as u64),
            difficulty,
        ));
    }
    Workload::new("amazon-reviews", Domain::Nlp, samples)
}

/// Configuration of the IMDB sentence stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ImdbConfig {
    /// Number of requests (sentences; 180 k in the paper).
    pub requests: usize,
    /// Mean sentences per review.
    pub mean_review_len: usize,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            requests: 18_000,
            mean_review_len: 12,
        }
    }
}

/// Generate the IMDB-style sentence-by-sentence workload.
pub fn imdb_reviews(config: ImdbConfig, seed: u64) -> Workload {
    let rng = DeterministicRng::new(seed).child(0x1111_DB00);
    let mut stream = rng.stream(&[0]);
    let mut samples = Vec::with_capacity(config.requests);
    let mut review_mean = 0.55f64;
    let mut review_remaining = 0usize;
    for i in 0..config.requests {
        if review_remaining == 0 {
            // A new movie review: sentiment clarity varies per review, and the
            // dataset drifts slowly across movies.
            let drift = 0.05 * ((i as f64 / config.requests as f64) * std::f64::consts::TAU).sin();
            review_mean = (stream.uniform(0.35, 0.75) + drift).clamp(0.0, 1.0);
            review_remaining =
                (stream.uniform(0.4, 2.0) * config.mean_review_len as f64).max(2.0) as usize;
        }
        review_remaining -= 1;
        // Individual sentences within a review swing between descriptive
        // (hard) and overtly opinionated (easy).
        let noise = stream.normal_with(0.0, 0.18);
        let difficulty = (review_mean + noise).clamp(0.0, 1.0);
        samples.push(SampleSemantics::new(
            seed.wrapping_mul(257)
                .wrapping_add(0xDB << 48)
                .wrapping_add(i as u64),
            difficulty,
        ));
    }
    Workload::new("imdb-reviews", Domain::Nlp, samples)
}

/// Both NLP classification workloads at their default sizes.
pub fn nlp_corpus(requests_each: usize, seed: u64) -> Vec<Workload> {
    vec![
        amazon_reviews(
            AmazonConfig {
                requests: requests_each,
                ..AmazonConfig::default()
            },
            seed,
        ),
        imdb_reviews(
            ImdbConfig {
                requests: requests_each,
                ..ImdbConfig::default()
            },
            seed.wrapping_add(1),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::{video_workload, VideoConfig};

    #[test]
    fn amazon_shape_and_bounds() {
        let w = amazon_reviews(
            AmazonConfig {
                requests: 10_000,
                ..Default::default()
            },
            1,
        );
        assert_eq!(w.len(), 10_000);
        assert_eq!(w.domain, Domain::Nlp);
        assert!(w
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.difficulty)));
    }

    #[test]
    fn imdb_shape_and_bounds() {
        let w = imdb_reviews(
            ImdbConfig {
                requests: 8_000,
                ..Default::default()
            },
            2,
        );
        assert_eq!(w.len(), 8_000);
        assert!(w
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.difficulty)));
    }

    #[test]
    fn nlp_is_harder_than_cv_on_average() {
        let nlp = amazon_reviews(
            AmazonConfig {
                requests: 15_000,
                ..Default::default()
            },
            3,
        );
        let cv = video_workload(
            "v",
            VideoConfig {
                frames: 15_000,
                ..Default::default()
            },
            3,
        );
        assert!(
            nlp.mean_difficulty() > cv.mean_difficulty() + 0.1,
            "nlp {} cv {}",
            nlp.mean_difficulty(),
            cv.mean_difficulty()
        );
    }

    #[test]
    fn nlp_has_much_lower_continuity_than_cv() {
        let nlp = amazon_reviews(
            AmazonConfig {
                requests: 15_000,
                ..Default::default()
            },
            4,
        );
        let imdb = imdb_reviews(
            ImdbConfig {
                requests: 15_000,
                ..Default::default()
            },
            4,
        );
        let cv = video_workload(
            "v",
            VideoConfig {
                frames: 15_000,
                ..Default::default()
            },
            4,
        );
        let cv_ac = cv.difficulty_autocorrelation();
        assert!(nlp.difficulty_autocorrelation() < cv_ac - 0.3);
        assert!(imdb.difficulty_autocorrelation() < cv_ac - 0.3);
    }

    #[test]
    fn nlp_streams_still_have_block_structure() {
        // Category/user/review blocks should leave *some* positive
        // autocorrelation — the stream is not i.i.d.
        let nlp = amazon_reviews(
            AmazonConfig {
                requests: 20_000,
                ..Default::default()
            },
            5,
        );
        assert!(nlp.difficulty_autocorrelation() > 0.05);
    }

    #[test]
    fn corpus_contains_both_datasets() {
        let corpus = nlp_corpus(5_000, 7);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].name, "amazon-reviews");
        assert_eq!(corpus[1].name, "imdb-reviews");
        assert_eq!(corpus[0].len(), 5_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = amazon_reviews(AmazonConfig::default(), 11);
        let b = amazon_reviews(AmazonConfig::default(), 11);
        assert_eq!(
            a.samples()[777].difficulty.to_bits(),
            b.samples()[777].difficulty.to_bits()
        );
    }
}
