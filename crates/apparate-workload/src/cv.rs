//! Synthetic video-analytics workloads.
//!
//! The paper uses eight one-hour videos (urban scenes, day and night) sampled
//! at 30 fps for real-time object classification. Two properties of those
//! workloads matter for Apparate:
//!
//! * **Strong spatiotemporal continuity** — consecutive frames show nearly the
//!   same scene, so difficulty is highly autocorrelated and recent history
//!   predicts the near future well (§4.2).
//! * **Regime changes** — scene cuts, lighting changes (day/night) and traffic
//!   density shifts move the difficulty distribution, which is what forces
//!   continual re-tuning (Figure 5, Table 1).
//!
//! Difficulty follows a per-scene AR(1) process whose mean jumps at scene
//! boundaries; night scenes are harder than day scenes.

use crate::stream::{Domain, Workload};
use apparate_exec::SampleSemantics;
use apparate_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic video.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Number of frames (the paper's hour-long 30 fps videos have 108 000; the
    /// experiments here default to a few tens of thousands for tractability).
    pub frames: usize,
    /// Frames per second (30 in the paper).
    pub fps: f64,
    /// Whether the video is a night scene (harder on average).
    pub night: bool,
    /// Mean scene length in frames before a regime change.
    pub mean_scene_len: usize,
    /// AR(1) coefficient of within-scene difficulty (close to 1 = very smooth).
    pub continuity: f64,
    /// Standard deviation of frame-to-frame innovation.
    pub innovation_std: f64,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            frames: 20_000,
            fps: 30.0,
            night: false,
            mean_scene_len: 900,
            continuity: 0.97,
            innovation_std: 0.03,
        }
    }
}

/// Generate one synthetic video difficulty stream.
pub fn video_workload(name: impl Into<String>, config: VideoConfig, seed: u64) -> Workload {
    let name = name.into();
    let rng = DeterministicRng::new(seed).child(0xC0FF_EE00);
    let mut stream = rng.stream(&[0]);
    let base_mean = if config.night { 0.38 } else { 0.22 };
    let mut scene_mean = base_mean;
    let mut scene_remaining = 0usize;
    let mut difficulty = scene_mean;
    let mut samples = Vec::with_capacity(config.frames);
    for i in 0..config.frames {
        if scene_remaining == 0 {
            // New scene: shift the difficulty regime.
            scene_mean = (base_mean + stream.normal_with(0.0, 0.10)).clamp(0.03, 0.85);
            let len = stream.uniform(0.5, 1.5) * config.mean_scene_len as f64;
            scene_remaining = len.max(30.0) as usize;
            // Occasional hard bursts: crowded intersection, occlusions.
            if stream.chance(0.12) {
                scene_mean = (scene_mean + 0.25).min(0.9);
            }
        }
        scene_remaining -= 1;
        let innovation = stream.normal_with(0.0, config.innovation_std);
        difficulty = scene_mean + config.continuity * (difficulty - scene_mean) + innovation;
        difficulty = difficulty.clamp(0.0, 1.0);
        samples.push(SampleSemantics::new(
            seed.wrapping_mul(1_000_003) + i as u64,
            difficulty,
        ));
    }
    Workload::new(name, Domain::Cv, samples)
}

/// The eight-video corpus used by the CV experiments: four day and four night
/// urban scenes with different continuity/scene-length characteristics.
pub fn video_corpus(frames_per_video: usize, seed: u64) -> Vec<Workload> {
    let configs = [
        ("urban-day-1", false, 900, 0.97),
        ("urban-day-2", false, 1_400, 0.98),
        ("suburb-day-1", false, 2_000, 0.985),
        ("highway-day-1", false, 700, 0.96),
        ("urban-night-1", true, 900, 0.97),
        ("urban-night-2", true, 1_200, 0.975),
        ("downtown-night-1", true, 600, 0.96),
        ("highway-night-1", true, 1_600, 0.98),
    ];
    configs
        .iter()
        .enumerate()
        .map(|(i, &(name, night, scene_len, continuity))| {
            video_workload(
                name,
                VideoConfig {
                    frames: frames_per_video,
                    night,
                    mean_scene_len: scene_len,
                    continuity,
                    ..VideoConfig::default()
                },
                seed.wrapping_add(i as u64 * 7919),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_has_requested_length_and_domain() {
        let w = video_workload(
            "v",
            VideoConfig {
                frames: 5_000,
                ..Default::default()
            },
            1,
        );
        assert_eq!(w.len(), 5_000);
        assert_eq!(w.domain, Domain::Cv);
    }

    #[test]
    fn difficulties_stay_in_unit_interval() {
        let w = video_workload(
            "v",
            VideoConfig {
                frames: 10_000,
                ..Default::default()
            },
            2,
        );
        assert!(w
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.difficulty)));
    }

    #[test]
    fn video_difficulty_is_highly_autocorrelated() {
        let w = video_workload(
            "v",
            VideoConfig {
                frames: 10_000,
                ..Default::default()
            },
            3,
        );
        assert!(
            w.difficulty_autocorrelation() > 0.8,
            "autocorrelation {}",
            w.difficulty_autocorrelation()
        );
    }

    #[test]
    fn night_videos_are_harder_than_day() {
        let day = video_workload(
            "day",
            VideoConfig {
                frames: 15_000,
                night: false,
                ..Default::default()
            },
            4,
        );
        let night = video_workload(
            "night",
            VideoConfig {
                frames: 15_000,
                night: true,
                ..Default::default()
            },
            4,
        );
        assert!(night.mean_difficulty() > day.mean_difficulty() + 0.05);
    }

    #[test]
    fn most_frames_are_easy() {
        // The EE premise: most video frames do not need the whole model.
        let w = video_workload(
            "v",
            VideoConfig {
                frames: 20_000,
                ..Default::default()
            },
            5,
        );
        let easy = w.samples().iter().filter(|s| s.difficulty < 0.5).count();
        assert!(
            easy as f64 / w.len() as f64 > 0.7,
            "easy fraction {}",
            easy as f64 / w.len() as f64
        );
    }

    #[test]
    fn corpus_has_eight_distinct_videos() {
        let corpus = video_corpus(2_000, 42);
        assert_eq!(corpus.len(), 8);
        let names: std::collections::BTreeSet<_> = corpus.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 8);
        // Seeds differ, so the difficulty streams must differ.
        assert_ne!(
            corpus[0].samples()[100].difficulty.to_bits(),
            corpus[1].samples()[100].difficulty.to_bits()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = video_workload("v", VideoConfig::default(), 9);
        let b = video_workload("v", VideoConfig::default(), 9);
        assert_eq!(
            a.samples()[1234].difficulty.to_bits(),
            b.samples()[1234].difficulty.to_bits()
        );
    }
}
