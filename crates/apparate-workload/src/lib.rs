//! Synthetic streaming workloads for the Apparate reproduction.
//!
//! The paper evaluates on real video, review and generation datasets; the
//! reproduction substitutes difficulty streams whose *dynamics* match what the
//! paper relies on: strong spatiotemporal continuity plus scene/lighting
//! regime changes for video ([`cv`]), weakly correlated block-structured
//! review streams ([`nlp`]), and strongly correlated within-sequence token
//! difficulty for generation ([`generative`]). [`stream::Workload`] carries
//! the samples and the 10 % bootstrap split used for ramp training (§3.1).
//!
//! Entry points: [`video_workload`], [`amazon_reviews`] / [`imdb_reviews`],
//! and [`GenerativeWorkload::generate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod generative;
pub mod nlp;
pub mod stream;

pub use cv::{video_corpus, video_workload, VideoConfig};
pub use generative::{GenerativeConfig, GenerativeTask, GenerativeWorkload, SequenceSpec};
pub use nlp::{amazon_reviews, imdb_reviews, nlp_corpus, AmazonConfig, ImdbConfig};
pub use stream::{BootstrapSplit, Domain, Workload};
