//! Workload streams: ordered sequences of semantic samples.
//!
//! A workload in the paper is an ordered stream of requests whose *difficulty*
//! evolves over time — video frames with strong spatiotemporal continuity,
//! review streams with weaker continuity and regime changes (§4.2 discusses
//! exactly this contrast). Apparate's adaptation loops only ever see the
//! stream through the ramp observations, so the stream itself just carries the
//! per-sample [`SampleSemantics`].

use apparate_exec::SampleSemantics;
use serde::{Deserialize, Serialize};

/// Which domain a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Real-time video object classification.
    Cv,
    /// NLP text classification (sentiment analysis).
    Nlp,
    /// Auto-regressive generation (summarisation / question answering).
    Generative,
}

/// An ordered classification workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name (e.g. `"video-urban-day"`, `"amazon-reviews"`).
    pub name: String,
    /// Domain.
    pub domain: Domain,
    samples: Vec<SampleSemantics>,
}

impl Workload {
    /// Wrap a sample stream.
    pub fn new(name: impl Into<String>, domain: Domain, samples: Vec<SampleSemantics>) -> Workload {
        Workload {
            name: name.into(),
            domain,
            samples,
        }
    }

    /// The full stream in arrival order.
    pub fn samples(&self) -> &[SampleSemantics] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the workload has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The bootstrap split used for ramp training: the first 10 % of the
    /// stream, split 1:9 into training and validation (§3.1).
    pub fn bootstrap_split(&self) -> BootstrapSplit<'_> {
        let boot = (self.samples.len() / 10).max(1).min(self.samples.len());
        let train_len = (boot / 10).max(1).min(boot);
        BootstrapSplit {
            train: &self.samples[..train_len],
            validation: &self.samples[train_len..boot],
            serving: &self.samples[boot..],
        }
    }

    /// Mean difficulty of the stream.
    pub fn mean_difficulty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.difficulty).sum::<f64>() / self.samples.len() as f64
    }

    /// Lag-1 autocorrelation of the difficulty series — the quantitative
    /// handle on "CV workloads have far more continuity than NLP" (§4.2).
    pub fn difficulty_autocorrelation(&self) -> f64 {
        let n = self.samples.len();
        if n < 3 {
            return 0.0;
        }
        let mean = self.mean_difficulty();
        let var: f64 = self
            .samples
            .iter()
            .map(|s| (s.difficulty - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        if var <= 0.0 {
            return 0.0;
        }
        let cov: f64 = self
            .samples
            .windows(2)
            .map(|w| (w[0].difficulty - mean) * (w[1].difficulty - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        cov / var
    }

    /// A shortened copy with only the first `n` samples.
    pub fn truncated(&self, n: usize) -> Workload {
        Workload {
            name: self.name.clone(),
            domain: self.domain,
            samples: self.samples.iter().copied().take(n).collect(),
        }
    }
}

/// The three-way split of a workload stream.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapSplit<'a> {
    /// Ramp-training samples (first 1 % of the stream).
    pub train: &'a [SampleSemantics],
    /// Validation samples (next 9 %).
    pub validation: &'a [SampleSemantics],
    /// The live serving stream (remaining 90 %).
    pub serving: &'a [SampleSemantics],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(n: usize) -> Workload {
        let samples = (0..n)
            .map(|i| SampleSemantics::new(i as u64, (i as f64 / n as f64).min(1.0)))
            .collect();
        Workload::new("test", Domain::Cv, samples)
    }

    #[test]
    fn bootstrap_split_proportions() {
        let w = workload(1000);
        let split = w.bootstrap_split();
        assert_eq!(split.train.len(), 10);
        assert_eq!(split.validation.len(), 90);
        assert_eq!(split.serving.len(), 900);
        assert_eq!(
            split.train.len() + split.validation.len() + split.serving.len(),
            1000
        );
    }

    #[test]
    fn bootstrap_split_handles_tiny_workloads() {
        let w = workload(5);
        let split = w.bootstrap_split();
        assert!(!split.train.is_empty());
        assert_eq!(
            split.train.len() + split.validation.len() + split.serving.len(),
            5
        );
    }

    #[test]
    fn autocorrelation_of_smooth_ramp_is_high() {
        let w = workload(500);
        assert!(w.difficulty_autocorrelation() > 0.9);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let samples = (0..500)
            .map(|i| SampleSemantics::new(i as u64, if i % 2 == 0 { 0.1 } else { 0.9 }))
            .collect();
        let w = Workload::new("alt", Domain::Nlp, samples);
        assert!(w.difficulty_autocorrelation() < -0.5);
    }

    #[test]
    fn truncation_preserves_prefix() {
        let w = workload(100).truncated(10);
        assert_eq!(w.len(), 10);
        assert_eq!(w.samples()[9].seed, 9);
    }
}
