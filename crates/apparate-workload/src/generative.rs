//! Synthetic generative workloads: text summarisation (CNN/DailyMail-like)
//! and question answering (SQuAD-like).
//!
//! Each request produces an output sequence; each *token* of that sequence is
//! a semantic sample for the ramp model. Two properties matter (§4.3):
//!
//! * auto-regressive generation has strong *within-sequence continuity*
//!   (shared state across tokens), so token difficulty is highly correlated
//!   inside a sequence — this is why Apparate tracks the optimal more closely
//!   here than for NLP classification;
//! * output lengths vary a lot (and are unpredictable), which is why
//!   generative serving uses continuous batching rather than SLOs.

use apparate_exec::SampleSemantics;
use apparate_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// The generative task being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenerativeTask {
    /// CNN/DailyMail-style abstractive summarisation: longer outputs.
    Summarization,
    /// SQuAD-style extractive question answering: short outputs.
    QuestionAnswering,
}

impl GenerativeTask {
    /// Canonical dataset name used in reports.
    pub fn dataset_name(self) -> &'static str {
        match self {
            GenerativeTask::Summarization => "cnn-dailymail",
            GenerativeTask::QuestionAnswering => "squad",
        }
    }
}

/// Configuration of a generative workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GenerativeConfig {
    /// The task.
    pub task: GenerativeTask,
    /// Number of requests.
    pub requests: usize,
    /// Mean difficulty of the token stream (lower = more skippable tokens).
    pub mean_difficulty: f64,
    /// Within-sequence AR(1) coefficient for token difficulty.
    pub continuity: f64,
}

impl GenerativeConfig {
    /// Defaults for a task.
    pub fn for_task(task: GenerativeTask, requests: usize) -> GenerativeConfig {
        match task {
            GenerativeTask::Summarization => GenerativeConfig {
                task,
                requests,
                mean_difficulty: 0.30,
                continuity: 0.85,
            },
            GenerativeTask::QuestionAnswering => GenerativeConfig {
                task,
                requests,
                mean_difficulty: 0.35,
                continuity: 0.80,
            },
        }
    }
}

/// One generative request: its output length and the latent difficulty state
/// needed to derive per-token semantics lazily and deterministically.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SequenceSpec {
    /// Request id (index in the workload).
    pub request_id: u64,
    /// Number of output tokens.
    pub output_tokens: u32,
    /// Sequence-level mean difficulty.
    pub sequence_mean: f64,
}

/// A generative workload: a set of sequences plus a deterministic per-token
/// difficulty model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerativeWorkload {
    /// The dataset this mimics.
    pub task: GenerativeTask,
    sequences: Vec<SequenceSpec>,
    continuity: f64,
    seed: u64,
}

impl GenerativeWorkload {
    /// Build a workload.
    pub fn generate(config: GenerativeConfig, seed: u64) -> GenerativeWorkload {
        let rng = DeterministicRng::new(seed).child(0x6E6E_7A7A);
        let mut stream = rng.stream(&[config.task as u64]);
        let sequences = (0..config.requests)
            .map(|i| {
                let output_tokens = match config.task {
                    GenerativeTask::Summarization => {
                        stream.normal_with(60.0, 18.0).clamp(16.0, 128.0) as u32
                    }
                    GenerativeTask::QuestionAnswering => {
                        stream.normal_with(18.0, 8.0).clamp(3.0, 48.0) as u32
                    }
                };
                let sequence_mean =
                    (config.mean_difficulty + stream.normal_with(0.0, 0.12)).clamp(0.02, 0.95);
                SequenceSpec {
                    request_id: i as u64,
                    output_tokens,
                    sequence_mean,
                }
            })
            .collect();
        GenerativeWorkload {
            task: config.task,
            sequences,
            continuity: config.continuity,
            seed,
        }
    }

    /// The sequences, in request order.
    pub fn sequences(&self) -> &[SequenceSpec] {
        &self.sequences
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if the workload has no requests.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of tokens across all sequences.
    pub fn total_tokens(&self) -> u64 {
        self.sequences.iter().map(|s| s.output_tokens as u64).sum()
    }

    /// Deterministic semantics of token `token_index` of request `request_id`.
    ///
    /// Token difficulty follows a stationary AR(1) around the sequence mean; it
    /// is computed in closed form (mean + decaying mixture of per-token
    /// innovations) so any token can be queried independently and repeatably.
    pub fn token_semantics(&self, request_id: u64, token_index: u32) -> SampleSemantics {
        let spec = &self.sequences[request_id as usize];
        let rng = DeterministicRng::new(self.seed).child(0x70CE4 + request_id);
        // Approximate AR(1): blend the previous few innovations with
        // geometrically decaying weights. Window of 8 captures > 99 % of the
        // mass for continuity <= 0.9.
        let mut deviation = 0.0f64;
        let mut weight = (1.0 - self.continuity * self.continuity).sqrt();
        for lag in 0..8u32 {
            if lag > token_index {
                break;
            }
            let idx = token_index - lag;
            let innovation = rng.normal_draw(&[idx as u64]) * 0.12;
            deviation += weight * innovation;
            weight *= self.continuity;
        }
        let difficulty = (spec.sequence_mean + deviation).clamp(0.0, 1.0);
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(request_id << 20)
            .wrapping_add(token_index as u64);
        SampleSemantics::new(seed, difficulty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(task: GenerativeTask) -> GenerativeWorkload {
        GenerativeWorkload::generate(GenerativeConfig::for_task(task, 200), 13)
    }

    #[test]
    fn summarization_outputs_are_longer_than_qa() {
        let summ = workload(GenerativeTask::Summarization);
        let qa = workload(GenerativeTask::QuestionAnswering);
        let mean_len = |w: &GenerativeWorkload| {
            w.sequences()
                .iter()
                .map(|s| s.output_tokens as f64)
                .sum::<f64>()
                / w.len() as f64
        };
        assert!(mean_len(&summ) > 2.0 * mean_len(&qa));
        assert_eq!(summ.task.dataset_name(), "cnn-dailymail");
        assert_eq!(qa.task.dataset_name(), "squad");
    }

    #[test]
    fn token_semantics_are_deterministic_and_bounded() {
        let w = workload(GenerativeTask::Summarization);
        let a = w.token_semantics(5, 10);
        let b = w.token_semantics(5, 10);
        assert_eq!(a.difficulty.to_bits(), b.difficulty.to_bits());
        assert_eq!(a.seed, b.seed);
        for r in 0..10u64 {
            for t in 0..20u32 {
                let s = w.token_semantics(r, t);
                assert!((0.0..=1.0).contains(&s.difficulty));
            }
        }
    }

    #[test]
    fn tokens_within_a_sequence_are_correlated() {
        let w = workload(GenerativeTask::Summarization);
        // Compare within-sequence variance to across-sequence variance of
        // difficulty: continuity should make within much smaller.
        let mut within = Vec::new();
        let mut means = Vec::new();
        for spec in w.sequences().iter().take(50) {
            let ds: Vec<f64> = (0..spec.output_tokens)
                .map(|t| w.token_semantics(spec.request_id, t).difficulty)
                .collect();
            let mean = ds.iter().sum::<f64>() / ds.len() as f64;
            let var = ds.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / ds.len() as f64;
            within.push(var);
            means.push(mean);
        }
        let mean_within = within.iter().sum::<f64>() / within.len() as f64;
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        let across = means.iter().map(|m| (m - grand).powi(2)).sum::<f64>() / means.len() as f64;
        assert!(
            mean_within < across,
            "within-sequence variance {mean_within} should be below across-sequence {across}"
        );
    }

    #[test]
    fn unique_seeds_per_token() {
        let w = workload(GenerativeTask::QuestionAnswering);
        let a = w.token_semantics(1, 2).seed;
        let b = w.token_semantics(1, 3).seed;
        let c = w.token_semantics(2, 2).seed;
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn total_tokens_adds_up() {
        let w = workload(GenerativeTask::QuestionAnswering);
        let sum: u64 = w.sequences().iter().map(|s| s.output_tokens as u64).sum();
        assert_eq!(w.total_tokens(), sum);
        assert!(!w.is_empty());
    }
}
