//! # Apparate — a Rust reproduction of "Apparate: Rethinking Early Exits to
//! # Tame Latency–Throughput Tensions in ML Serving" (SOSP '24)
//!
//! This facade crate re-exports the whole workspace so applications (and the
//! examples in `examples/`) can depend on a single crate:
//!
//! * [`sim`] — virtual time, splittable deterministic RNG, event queue, stats.
//! * [`telemetry`] — sim-time event tracing and sampled metrics, with
//!   JSON-lines and chrome://tracing exporters (zero-cost when disabled).
//! * [`model`] — layer IR, model graphs, latency models, the model zoo.
//! * [`exec`] — ramp semantics, execution plans, GPU accounting.
//! * [`workload`] — synthetic CV / NLP / generative difficulty streams.
//! * [`serving`] — serving-platform simulation with pluggable exit policies.
//! * [`control`] — Apparate's controller algorithms (placement, tuning, …).
//! * [`baselines`] — vanilla / static-EE / offline-tuned / oracle policies.
//! * [`experiments`] — the end-to-end comparison harness and `repro` binary,
//!   including multi-replica fleet runs and the sensitivity sweeps.
//!
//! Run the headline comparison with:
//!
//! ```text
//! cargo run --release -p apparate-experiments --bin repro
//! ```
//!
//! and the scale-out / sensitivity mode with `repro --sweep`. The narrated
//! walkthroughs in `examples/` (`quickstart`, `video_analytics`,
//! `sentiment_serving`, `generative_llm`, `telemetry`) are the best entry
//! points for reading; `README.md` maps every crate to the paper section it
//! reproduces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apparate_baselines as baselines;
pub use apparate_core as control;
pub use apparate_exec as exec;
pub use apparate_experiments as experiments;
pub use apparate_model as model;
pub use apparate_serving as serving;
pub use apparate_sim as sim;
pub use apparate_telemetry as telemetry;
pub use apparate_workload as workload;
